package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func storedKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i+1) * 2 // even = stored
	}
	return keys
}

func TestUniformHitRate(t *testing.T) {
	g, err := New(storedKeys(1000), Config{Pattern: Uniform, HitRate: 0.9, KeyBits: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	n := 50000
	for i := 0; i < n; i++ {
		if g.Next()%2 == 0 {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.9) > 0.01 {
		t.Errorf("hit rate = %v, want ≈0.9", got)
	}
}

func TestMissKeysAreOdd(t *testing.T) {
	g, err := New(storedKeys(100), Config{Pattern: Uniform, HitRate: 0, KeyBits: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if k := g.Next(); k%2 == 0 {
			t.Fatalf("miss generator produced even key %d", k)
		}
	}
}

func TestUniformCoversKeys(t *testing.T) {
	stored := storedKeys(100)
	g, _ := New(stored, Config{Pattern: Uniform, HitRate: 1, KeyBits: 32, Seed: 3})
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		seen[g.Next()] = true
	}
	if len(seen) < 95 {
		t.Errorf("uniform generator covered only %d/100 keys", len(seen))
	}
}

func TestSkewedIsSkewed(t *testing.T) {
	stored := storedKeys(10000)
	g, err := New(stored, Config{Pattern: Skewed, HitRate: 1, KeyBits: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	n := 100000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// Zipf 0.99 over 10k keys: the hottest key draws a few percent of all
	// accesses; uniform would give 0.01%.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(n) < 0.01 {
		t.Errorf("hottest key got %.3f%% of accesses; not skewed", 100*float64(max)/float64(n))
	}
	// And the top 10% of keys must dominate.
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("accounting error: %d", total)
	}
}

func TestSkewedDeterministicAcrossRuns(t *testing.T) {
	mk := func() []uint64 {
		g, _ := New(storedKeys(500), Config{Pattern: Skewed, HitRate: 0.9, KeyBits: 32, Seed: 9})
		return Keys(g, 100)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the identical stream")
		}
	}
}

func TestZipfRankDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z, err := NewZipf(1000, 0.99, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		r := z.Next()
		if r < 0 || r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must be the most frequent, and roughly 1/zeta(1000, .99) of
	// the mass (≈ 1/7.5).
	if counts[0] < counts[1] || counts[0] < counts[500] {
		t.Error("rank 0 not hottest")
	}
	frac := float64(counts[0]) / float64(n)
	if frac < 0.08 || frac > 0.2 {
		t.Errorf("rank-0 mass = %v, want ≈0.13", frac)
	}
	// Monotone-ish decay between decades.
	if counts[0] < counts[10] || counts[10] < counts[100] {
		t.Error("zipf mass not decaying across decades")
	}
}

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(0, 0.99, rng); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewZipf(10, 1.5, rng); err == nil {
		t.Error("theta > 1 accepted (use a different sampler for that regime)")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{Pattern: Uniform, KeyBits: 32}); err == nil {
		t.Error("empty key set accepted")
	}
	if _, err := New(storedKeys(10), Config{Pattern: Uniform, HitRate: 1.5, KeyBits: 32}); err == nil {
		t.Error("hit rate > 1 accepted")
	}
	if _, err := New(storedKeys(10), Config{Pattern: Pattern(99), KeyBits: 32}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestPatternString(t *testing.T) {
	if Uniform.String() != "uniform" || Skewed.String() != "skewed" {
		t.Error("pattern names wrong")
	}
}

func TestKeysHelper(t *testing.T) {
	g, _ := New(storedKeys(10), Config{Pattern: Uniform, HitRate: 1, KeyBits: 32, Seed: 6})
	ks := Keys(g, 17)
	if len(ks) != 17 {
		t.Errorf("Keys returned %d", len(ks))
	}
}

func Test16BitMissKeysInRange(t *testing.T) {
	g, _ := New(storedKeys(10), Config{Pattern: Uniform, HitRate: 0, KeyBits: 16, Seed: 7})
	for i := 0; i < 1000; i++ {
		if k := g.Next(); k > 0xFFFF {
			t.Fatalf("16-bit miss key %#x out of range", k)
		}
	}
}

func TestETCKeySizes(t *testing.T) {
	etc := NewETC(1)
	var sum, n float64
	for i := 0; i < 20000; i++ {
		k := etc.KeyLen()
		if k < etc.MinKeyLen || k > etc.MaxKeyLen {
			t.Fatalf("key length %d out of bounds", k)
		}
		sum += float64(k)
		n++
	}
	mean := sum / n
	// The ETC study reports key sizes clustering in the tens of bytes.
	if mean < 20 || mean > 60 {
		t.Errorf("mean key length %.1f outside the ETC band", mean)
	}
}

func TestETCValueSizesHeavyTailed(t *testing.T) {
	etc := NewETC(2)
	vals := make([]int, 50000)
	under500 := 0
	maxV := 0
	var sum float64
	for i := range vals {
		v := etc.ValLen()
		if v < etc.MinValLen || v > etc.MaxValLen {
			t.Fatalf("value length %d out of bounds", v)
		}
		vals[i] = v
		if v < 500 {
			under500++
		}
		if v > maxV {
			maxV = v
		}
		sum += float64(v)
	}
	frac := float64(under500) / float64(len(vals))
	// The study: ~90% of ETC values are under 500 B, with a heavy tail.
	if frac < 0.75 || frac > 0.98 {
		t.Errorf("fraction under 500B = %.2f, want ≈0.9", frac)
	}
	if maxV < 2000 {
		t.Errorf("max value %d; the tail should reach multi-KB objects", maxV)
	}
	mean := sum / float64(len(vals))
	if mean < 100 || mean > 600 {
		t.Errorf("mean value size %.0f outside plausible ETC band", mean)
	}
}

func TestETCDeterministic(t *testing.T) {
	a, b := NewETC(7), NewETC(7)
	for i := 0; i < 100; i++ {
		if a.KeyLen() != b.KeyLen() || a.ValLen() != b.ValLen() {
			t.Fatal("same seed must reproduce the same sizes")
		}
	}
}

func TestETCItems(t *testing.T) {
	items := NewETC(3).Items(10)
	if len(items) != 10 {
		t.Fatalf("Items returned %d", len(items))
	}
	if items[0].String() == "" {
		t.Error("empty item string")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, keys); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("read %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], keys[i])
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("not a trace at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewBufferString("SHTB")); err == nil {
		t.Error("truncated header accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	WriteTrace(&buf, []uint64{1, 2, 3})
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadTrace(bytes.NewBuffer(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestTraceGeneratorCycles(t *testing.T) {
	g, err := NewTraceGenerator("test", []uint64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 20, 30, 10, 20}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("step %d = %d, want %d", i, got, w)
		}
	}
	if g.Name() != "trace:test" || g.Len() != 3 {
		t.Error("trace metadata wrong")
	}
	if _, err := NewTraceGenerator("empty", nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestTraceCapturesGeneratorStream(t *testing.T) {
	// A recorded generator stream replays bit-identically.
	g, _ := New(storedKeys(200), Config{Pattern: Skewed, HitRate: 0.9, KeyBits: 32, Seed: 13})
	original := Keys(g, 1000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, original); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, _ := NewTraceGenerator("capture", loaded)
	for i := 0; i < 1000; i++ {
		if replay.Next() != original[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
