// multiget runs the full Section VI stack end to end: an RDMA-Memcached-
// style server with a SIMD-aware index serves memslap Multi-Get batches
// from closed-loop clients over a simulated InfiniBand EDR fabric.
//
// It demonstrates the public kvs/netsim/des/memslap APIs directly — loading
// items, issuing a functional Get, then measuring all three index backends
// under the paper's workload shape (20 B keys, 32 B values, skewed access,
// batches of 16).
//
// Run with: go run ./examples/multiget
package main

import (
	"fmt"
	"log"

	"simdhtbench/internal/arch"
	"simdhtbench/internal/des"
	"simdhtbench/internal/kvs"
	"simdhtbench/internal/mem"
	"simdhtbench/internal/memslap"
	"simdhtbench/internal/netsim"
)

func main() {
	const (
		items   = 100000
		workers = 26
		clients = 26
		batch   = 16
	)

	fmt.Println("Multi-Get over simulated IB EDR, 26 workers / 26 clients")
	fmt.Println()

	for _, backend := range []string{"memc3", "horizontal", "vertical"} {
		sim := des.New()
		fabric := netsim.New(sim, netsim.EDR())
		space := mem.NewAddressSpace()
		store := kvs.NewItemStore(space)

		var index kvs.Index
		var err error
		switch backend {
		case "memc3":
			index = kvs.NewMemC3Index(space, items, 1)
		case "horizontal":
			index, err = kvs.NewHorizontalIndex(space, items, 128, 1)
		case "vertical":
			index, err = kvs.NewVerticalIndex(space, items, 128, 1)
		}
		if err != nil {
			log.Fatal(err)
		}

		srv := kvs.NewServer(sim, arch.SkylakeClusterB(), workers, 128, index, store)
		keys, err := memslap.LoadKeys(srv, items, 20, 32)
		if err != nil {
			log.Fatal(err)
		}

		// Functional sanity check before measuring: the store really
		// stores.
		if v, ok := srv.Get(keys[0]); !ok || len(v) != 32 {
			log.Fatalf("functional Get failed for %q", keys[0])
		}

		res, err := memslap.Run(sim, fabric, srv, keys, memslap.Config{
			Clients:   clients,
			BatchSize: batch,
			Requests:  2000,
			KeyBytes:  20,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}

		lookupThr := float64(batch) / res.Breakdown.Lookup
		fmt.Printf("%-28s  e2e avg %6.1f us  p99 %6.1f us  server Get thr %6.1f M/s\n",
			res.Backend, res.AvgLatency*1e6, res.P99Latency*1e6, lookupThr/1e6)
		fmt.Printf("%-28s  phases/batch: pre %.2f us | lookup %.2f us | post %.2f us\n",
			"", res.Breakdown.Pre*1e6, res.Breakdown.Lookup*1e6, res.Breakdown.Post*1e6)
		fmt.Println()
	}
}
