// dbjoin models the analytical-database scenario that motivated vertical
// vectorization (Polychroniou et al., SIGMOD'15): a hash join probes a
// build-side hash table with a long stream of distinct foreign keys —
// batched lookups with a uniform access pattern and a selectivity given by
// the join.
//
// The example builds the join's hash table as a non-bucketized 3-way cuckoo
// HT (near-constant probe cost, >90% load factor), then probes it with the
// vertical AVX-512 template — one probe-side key per SIMD lane — and
// reports the speedup over the tuned scalar probe loop for both an
// L2-resident and an out-of-cache build side.
//
// Run with: go run ./examples/dbjoin
package main

import (
	"fmt"
	"log"

	"simdhtbench/internal/arch"
	"simdhtbench/internal/core"
	"simdhtbench/internal/workload"
)

func main() {
	model := arch.SkylakeClusterA()

	fmt.Println("hash-join probe phase: 3-way cuckoo build side, vertical SIMD probes")
	fmt.Println()

	for _, cfg := range []struct {
		name        string
		tableBytes  int
		selectivity float64
	}{
		{"small dimension table (512 KB, cache-resident)", 512 << 10, 0.95},
		{"large build side (32 MB, out of cache)", 32 << 20, 0.95},
		{"semi-join with low selectivity (4 MB)", 4 << 20, 0.25},
	} {
		result, err := core.Run(core.Params{
			Arch:       model,
			N:          3,
			M:          1,
			KeyBits:    32,
			ValBits:    32, // row-id payload
			TableBytes: cfg.tableBytes,
			LoadFactor: 0.9,
			HitRate:    cfg.selectivity,
			Pattern:    workload.Uniform, // foreign keys spread uniformly
			Queries:    4000,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", cfg.name)
		fmt.Printf("  scalar probe:   %8.1f M probes/s/core\n", result.Scalar.LookupsPerSec/1e6)
		for _, v := range result.Vector {
			fmt.Printf("  %-15s %8.1f M probes/s/core  (%.2fx)\n",
				v.Choice, v.LookupsPerSec/1e6, result.Speedup(v))
		}
		fmt.Println()
	}

	fmt.Println("Takeaway: vertical SIMD keeps its lead while the build side fits on")
	fmt.Println("chip; once probes stream from DRAM under full subscription the gap")
	fmt.Println("narrows to the memory wall (Case Study 1b).")
}
