// cluster runs the complete Section VI-A pipeline across a Memcached server
// cluster: clients map each Multi-Get's keys to servers with consistent
// hashing (kvs.Ring), send one sub-batch per owning server over the
// simulated EDR fabric, and complete when the last sub-response arrives.
//
// It demonstrates the multiget trade-off: adding servers multiplies
// aggregate throughput and parallelizes each request, but shrinks the
// per-server sub-batches that make SIMD lookups and network transfers
// efficient.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"simdhtbench/internal/arch"
	"simdhtbench/internal/des"
	"simdhtbench/internal/kvs"
	"simdhtbench/internal/mem"
	"simdhtbench/internal/memslap"
	"simdhtbench/internal/netsim"
)

func main() {
	const (
		items   = 120000
		batch   = 32
		clients = 26
		workers = 26
	)

	fmt.Println("Multi-Get across a consistent-hashing cluster (Cuckoo-Ver AVX-512 backend)")
	fmt.Println()

	for _, nservers := range []int{1, 2, 4} {
		sim := des.New()
		fabric := netsim.New(sim, netsim.EDR())
		ring, err := kvs.NewRing(nservers, 0)
		if err != nil {
			log.Fatal(err)
		}

		servers := make([]*kvs.Server, nservers)
		for i := range servers {
			space := mem.NewAddressSpace()
			store := kvs.NewItemStore(space)
			index, err := kvs.NewVerticalIndex(space, items/nservers+items/4, 256, int64(i+1))
			if err != nil {
				log.Fatal(err)
			}
			servers[i] = kvs.NewServer(sim, arch.SkylakeClusterB(), workers, 256, index, store)
		}

		keys, err := memslap.LoadCluster(servers, ring, items, 20, 32)
		if err != nil {
			log.Fatal(err)
		}

		res, err := memslap.RunCluster(sim, fabric, servers, ring, keys, memslap.Config{
			Clients:   clients,
			BatchSize: batch,
			Requests:  2500,
			KeyBytes:  20,
			Seed:      9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d server(s): %7.1f Mkeys/s aggregate | e2e avg %5.1f us p99 %5.1f us | fanout %.2f\n",
			nservers, res.ThroughputKeys/1e6, res.AvgLatency*1e6, res.P99Latency*1e6, res.AvgFanout)
	}

	fmt.Println()
	fmt.Println("Aggregate throughput scales with servers while per-request latency")
	fmt.Println("drops (sub-batches run in parallel) — at the price of smaller")
	fmt.Println("per-server batches for the SIMD lookup phase to amortize over.")
}
