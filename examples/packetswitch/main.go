// packetswitch models the networking scenario of CuckooSwitch and DPDK's
// rte_hash: a software switch looks up the forwarding port for every
// incoming packet's destination address. Lookups arrive in receive-side
// batches, hit almost always (the FIB contains the active flows), and the
// access pattern across flows is close to uniform — the opposite of the
// skewed key-value-store pattern.
//
// The forwarding table is the networking-style bucketized layout of
// Table I: a (2,8) BCHT probed with the horizontal approach, where one
// 512-bit vector compares all eight slots of a bucket at once. The example
// also shows the (2,4) variant whose bucket fits a 256-bit vector.
//
// Run with: go run ./examples/packetswitch
package main

import (
	"fmt"
	"log"

	"simdhtbench/internal/arch"
	"simdhtbench/internal/core"
	"simdhtbench/internal/workload"
)

func main() {
	model := arch.CascadeLake() // modern packet-processing node

	fmt.Println("software switch FIB lookups: horizontal SIMD over bucketized tables")
	fmt.Println()

	for _, cfg := range []struct {
		name string
		n, m int
	}{
		{"(2,8) BCHT — DPDK rte_hash-style bucket, AVX-512 probes", 2, 8},
		{"(2,4) BCHT — CuckooSwitch-style bucket, AVX2 probes", 2, 4},
	} {
		result, err := core.Run(core.Params{
			Arch:       model,
			N:          cfg.n,
			M:          cfg.m,
			KeyBits:    32, // hashed flow key
			ValBits:    32, // egress port + flow metadata index
			TableBytes: 2 << 20,
			LoadFactor: 0.9,
			HitRate:    0.98, // nearly every packet belongs to a known flow
			Pattern:    workload.Uniform,
			Queries:    4000,
			Seed:       11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (LF %.2f)\n", cfg.name, result.AchievedLF)
		fmt.Printf("  scalar:  %8.1f M lookups/s/core\n", result.Scalar.LookupsPerSec/1e6)
		for _, v := range result.Vector {
			// Express forwarding capacity: 64 B minimum-size packets.
			gbps := v.LookupsPerSec * 64 * 8 / 1e9
			fmt.Printf("  %-28s %8.1f M lookups/s/core (%.2fx) ≈ %.0f Gbps of 64B packets\n",
				v.Choice, v.LookupsPerSec/1e6, result.Speedup(v), gbps)
		}
		fmt.Println()
	}
}
