// mixedworkload explores the paper's stated future work (Section VII):
// what happens to SIMD-aware lookup designs when the workload is not
// read-only. A fraction of operations overwrite stored payloads; updates
// run the inherently scalar cuckoo insert path and fragment the vertical
// template's lookup batches.
//
// Run with: go run ./examples/mixedworkload
package main

import (
	"fmt"
	"log"
	"strings"

	"simdhtbench/internal/arch"
	"simdhtbench/internal/core"
	"simdhtbench/internal/workload"
)

func main() {
	model := arch.SkylakeClusterA()

	fmt.Println("mixed read/update workloads: 3-way cuckoo HT, 1MB, Skylake, uniform reads")
	fmt.Println()
	fmt.Printf("%-16s %-14s %-18s %-9s %s\n",
		"update fraction", "scalar Mops/s", "best SIMD Mops/s", "speedup", "")

	for _, uf := range []float64{0, 0.02, 0.05, 0.10, 0.25, 0.50} {
		r, err := core.RunMixed(core.Params{
			Arch:       model,
			N:          3,
			M:          1,
			KeyBits:    32,
			ValBits:    32,
			TableBytes: 1 << 20,
			LoadFactor: 0.9,
			HitRate:    0.9,
			Pattern:    workload.Uniform,
			Queries:    4000,
			Seed:       21,
		}, uf)
		if err != nil {
			log.Fatal(err)
		}
		best, ok := r.Best()
		if !ok {
			log.Fatal("no SIMD choice")
		}
		speedup := r.Speedup(best)
		bar := strings.Repeat("#", int(speedup*10))
		fmt.Printf("%-16s %-14.1f %-18.1f %-9s %s\n",
			fmt.Sprintf("%.0f%%", uf*100),
			r.Scalar.LookupsPerSec/1e6,
			best.LookupsPerSec/1e6,
			fmt.Sprintf("%.2fx", speedup),
			bar)
	}

	fmt.Println()
	fmt.Println("Updates are inherently scalar (the cuckoo eviction path is a dependent")
	fmt.Println("chase) and every update flushes the in-flight SIMD batch, so the")
	fmt.Println("read-only speedup decays toward parity as the update fraction grows —")
	fmt.Println("quantifying why the paper scopes SIMD-aware designs to read-dominated")
	fmt.Println("workloads.")
}
