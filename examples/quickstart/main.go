// Quickstart: build a SIMD-aware cuckoo hash table, validate which SIMD
// designs fit it, and measure them against the scalar baseline with the
// SimdHT-Bench performance engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"simdhtbench/internal/arch"
	"simdhtbench/internal/core"
	"simdhtbench/internal/workload"
)

func main() {
	// 1. Pick a CPU model — the 40-core Skylake node of the paper's
	//    Cluster A — and describe the workload: a (2,4) bucketized cuckoo
	//    hash table of 1 MB holding 32-bit keys and payloads, filled to a
	//    90% load factor and queried uniformly with a 90% hit rate.
	params := core.Params{
		Arch:       arch.SkylakeClusterA(),
		N:          2,
		M:          4,
		KeyBits:    32,
		ValBits:    32,
		TableBytes: 1 << 20,
		LoadFactor: 0.9,
		HitRate:    0.9,
		Pattern:    workload.Uniform,
		Queries:    4000,
		Seed:       42,
	}

	// 2. Ask the validation engine which SIMD designs apply. For a (2,4)
	//    BCHT the horizontal approach fits a whole bucket in a 256-bit
	//    vector (one bucket per vector) or both buckets in 512 bits.
	layoutRows, err := core.ValidateGrid(params.Arch, [][2]int{{params.N, params.M}},
		params.KeyBits, params.ValBits, params.TableBytes, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatListing(params.Arch, params.KeyBits, params.ValBits, params.Arch.Widths, layoutRows))
	fmt.Println()

	// 3. Run the performance engine: it builds and fills the table,
	//    generates the query stream, and measures the scalar baseline plus
	//    every viable SIMD design choice on the simulated machine.
	result, err := core.Run(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("table: %s, achieved load factor %.2f (%d items)\n\n",
		result.Layout, result.AchievedLF, result.Inserted)
	fmt.Printf("%-32s %12.1f M lookups/s/core (%.0f cycles/lookup)\n",
		"Scalar", result.Scalar.LookupsPerSec/1e6, result.Scalar.CyclesPerLookup)
	for _, v := range result.Vector {
		fmt.Printf("%-32s %12.1f M lookups/s/core (%.0f cycles/lookup)  %.2fx\n",
			v.Choice, v.LookupsPerSec/1e6, v.CyclesPerLookup, result.Speedup(v))
	}
}
