// Package simdhtbench is a from-scratch Go reproduction of "SimdHT-Bench:
// Characterizing SIMD-Aware Hash Table Designs on Emerging CPU
// Architectures" (Shankar, Lu, Panda; IISWC 2019).
//
// The module contains the complete system the paper describes and every
// substrate it depends on:
//
//   - internal/core — the paper's contribution: the SimdHT-Bench suite
//     (configurable inputs, the SIMD-algorithm validation engine, the
//     performance engine), plus the design advisor and self-test.
//   - internal/cuckoo — the (N,m) cuckoo hash-table substrate with scalar,
//     AMAC, horizontal-SIMD, vertical-SIMD and hybrid lookups over both
//     interleaved and split bucket arrangements.
//   - internal/vec, internal/engine, internal/arch, internal/cache,
//     internal/mem — the architectural simulation substrate that replaces
//     AVX intrinsics: a lane-exact software vector ISA, a charged execution
//     engine, CPU models with license-based frequency scaling, and a cache
//     hierarchy simulator.
//   - internal/kvs, internal/netsim, internal/des, internal/memslap — the
//     Section-VI validation: an RDMA-Memcached-style key-value store with
//     MemC3 and SIMD-aware index backends on a discrete-event InfiniBand
//     EDR fabric, driven by a memslap-like Multi-Get client (single server
//     or a consistent-hashing cluster).
//   - internal/workload — uniform, Zipfian (mutilate-like) and Facebook-ETC
//     generators with trace record/replay.
//   - internal/cuckoomap — a native, adoptable generic implementation of
//     the recommended (2,4) tag-prefiltered cuckoo map.
//
// The root package holds the top-level benchmark harness (bench_test.go,
// ablation_bench_test.go): one testing.B benchmark per table and figure of
// the paper's evaluation plus ablations of the model's design choices.
//
// Start with README.md (install and quickstart), DESIGN.md (system
// inventory, substitution table, per-experiment index) and EXPERIMENTS.md
// (paper-vs-measured results for every table and figure).
package simdhtbench
