// Package simdhtbench_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation.
//
// Each benchmark executes the same experiment runner the cmd/simdhtbench
// and cmd/kvsbench harnesses use (internal/experiments), at a reduced query
// count so `go test -bench=.` completes quickly; the command-line harnesses
// regenerate the full-size tables. Custom metrics report the headline
// quantity of each figure (speedups, load factors, latency gains) so a
// bench run doubles as a regression check on the reproduced shapes.
package simdhtbench_test

import (
	"fmt"
	"math/rand"
	"testing"

	"simdhtbench/internal/arch"
	"simdhtbench/internal/core"
	"simdhtbench/internal/cuckoo"
	"simdhtbench/internal/engine"
	"simdhtbench/internal/experiments"
	"simdhtbench/internal/mem"
	"simdhtbench/internal/obs"
	"simdhtbench/internal/obs/prof"
	"simdhtbench/internal/workload"
)

// benchOpts trims experiments for benchmark iterations.
var benchOpts = experiments.Options{Queries: 1500, Seed: 1}

// kvsBenchOpts trims the Section VI stack for benchmark iterations.
var kvsBenchOpts = experiments.KVSOptions{Items: 60000, Requests: 600, Seed: 7}

// BenchmarkTable1Registry regenerates Table I (the design registry).
func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Table1(); t.Rows() == 0 {
			b.Fatal("empty registry")
		}
	}
}

// BenchmarkFig2LoadFactor regenerates Fig. 2: empirical maximum load factor
// of every (N, m) cuckoo variant.
func BenchmarkFig2LoadFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := core.LoadFactorStudy(core.Fig2Variants(), 9, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.N == 3 && p.M == 1 {
				b.ReportMetric(p.MaxLF, "LF-3way")
			}
			if p.N == 2 && p.M == 4 {
				b.ReportMetric(p.MaxLF, "LF-2x4")
			}
		}
	}
}

// BenchmarkListing1Validation regenerates Listing 1: the validation
// engine's design-choice enumeration.
func BenchmarkListing1Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Listing1()
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty listing")
		}
	}
}

// benchSpeedup runs one performance-engine configuration and reports the
// best SIMD speedup as a custom metric, plus the simulator's own throughput
// (simulated Mlookups per host second over every measured variant) — the
// sim-speed series scripts/benchdiff.sh guards against regressions.
func benchSpeedup(b *testing.B, p core.Params, metric string) {
	b.Helper()
	var simQueries, hostSeconds float64
	for i := 0; i < b.N; i++ {
		r, err := core.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		best, ok := r.Best()
		if !ok {
			b.Fatal("no SIMD design viable")
		}
		b.ReportMetric(r.Speedup(best), metric)
		b.ReportMetric(best.LookupsPerSec/1e6, "Mlookups/s")
		simQueries += float64(r.Params.Queries)
		hostSeconds += r.Scalar.HostSeconds
		for _, m := range r.Vector {
			simQueries += float64(r.Params.Queries)
			hostSeconds += m.HostSeconds
		}
	}
	if hostSeconds > 0 {
		b.ReportMetric(simQueries/hostSeconds/1e6, "sim-Mlookups/s")
	}
}

// BenchmarkFig5HorizontalVsVertical regenerates the headline points of
// Fig. 5 (Case Study ①a): best SIMD speedup for the 3-way vertical and
// (2,4) horizontal designs, uniform and skewed, 1 MB HT.
func BenchmarkFig5HorizontalVsVertical(b *testing.B) {
	model := arch.SkylakeClusterA()
	cases := []struct {
		name    string
		n, m    int
		pattern workload.Pattern
	}{
		{"3way-vertical-uniform", 3, 1, workload.Uniform},
		{"3way-vertical-skewed", 3, 1, workload.Skewed},
		{"2x4-horizontal-uniform", 2, 4, workload.Uniform},
		{"2x4-horizontal-skewed", 2, 4, workload.Skewed},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			benchSpeedup(b, core.Params{
				Arch: model, N: c.n, M: c.m, KeyBits: 32, ValBits: 32,
				TableBytes: 1 << 20, LoadFactor: 0.9, HitRate: 0.9,
				Pattern: c.pattern, Queries: benchOpts.Queries, Seed: benchOpts.Seed,
			}, "speedup")
		})
	}
}

// BenchmarkFig6HTSizeSweep regenerates Fig. 6 (Case Study ①b): the SIMD
// benefit at the two ends of the table-size sweep.
func BenchmarkFig6HTSizeSweep(b *testing.B) {
	model := arch.SkylakeClusterA()
	for _, sz := range []int{256 << 10, 64 << 20} {
		name := "256KB"
		if sz == 64<<20 {
			name = "64MB"
		}
		b.Run(name, func(b *testing.B) {
			benchSpeedup(b, core.Params{
				Arch: model, N: 3, M: 1, KeyBits: 32, ValBits: 32,
				TableBytes: sz, LoadFactor: 0.9, HitRate: 0.9,
				Pattern: workload.Uniform, Queries: benchOpts.Queries, Seed: benchOpts.Seed,
			}, "speedup")
		})
	}
}

// BenchmarkFig7aKeySizes regenerates Fig. 7a (Case Study ②): the 64-bit
// key/payload gather-width penalty and the 16-bit key BCHT.
func BenchmarkFig7aKeySizes(b *testing.B) {
	model := arch.SkylakeClusterA()
	b.Run("64x64-3way-vertical", func(b *testing.B) {
		benchSpeedup(b, core.Params{
			Arch: model, N: 3, M: 1, KeyBits: 64, ValBits: 64,
			TableBytes: 512 << 10, LoadFactor: 0.9, HitRate: 0.9,
			Pattern: workload.Uniform, Queries: benchOpts.Queries, Seed: benchOpts.Seed,
		}, "speedup")
	})
	b.Run("16x32-2x8-horizontal", func(b *testing.B) {
		benchSpeedup(b, core.Params{
			Arch: model, N: 2, M: 8, KeyBits: 16, ValBits: 32,
			TableBytes: 512 << 10, LoadFactor: 0.9, HitRate: 0.9,
			Pattern: workload.Uniform, Queries: benchOpts.Queries, Seed: benchOpts.Seed,
		}, "speedup")
	})
}

// BenchmarkFig7bAVX2VsAVX512 regenerates Fig. 7b (Case Study ③): the gain
// of doubling the vector width on a 3-way cuckoo HT, in and out of cache.
func BenchmarkFig7bAVX2VsAVX512(b *testing.B) {
	model := arch.SkylakeClusterA()
	for _, sz := range []int{1 << 20, 16 << 20} {
		name := "1MB"
		if sz == 16<<20 {
			name = "16MB"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.Run(core.Params{
					Arch: model, N: 3, M: 1, KeyBits: 32, ValBits: 32,
					TableBytes: sz, LoadFactor: 0.9, HitRate: 0.9,
					Pattern: workload.Uniform, Queries: benchOpts.Queries, Seed: benchOpts.Seed,
					Widths: []int{256, 512},
				})
				if err != nil {
					b.Fatal(err)
				}
				var v256, v512 float64
				for _, m := range r.Vector {
					if m.Choice.Width == 256 {
						v256 = m.LookupsPerSec
					} else {
						v512 = m.LookupsPerSec
					}
				}
				b.ReportMetric(v512/v256, "512/256-ratio")
			}
		})
	}
}

// BenchmarkFig8SkylakeVsCascadeLake regenerates Fig. 8 (Case Study ④): the
// node-generation gain for the vertical design.
func BenchmarkFig8SkylakeVsCascadeLake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var thr [2]float64
		for j, model := range []*arch.Model{arch.SkylakeClusterA(), arch.CascadeLake()} {
			r, err := core.Run(core.Params{
				Arch: model, N: 3, M: 1, KeyBits: 32, ValBits: 32,
				TableBytes: 1 << 20, LoadFactor: 0.9, HitRate: 0.9,
				Pattern: workload.Uniform, Queries: benchOpts.Queries, Seed: benchOpts.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			best, _ := r.Best()
			thr[j] = best.LookupsPerSec
		}
		b.ReportMetric(thr[1]/thr[0], "CLX/SKX-ratio")
	}
}

// BenchmarkFig9VerticalOnBCHT regenerates Fig. 9 (Case Study ⑤): vertical
// SIMD over a (2,2) BCHT vs the 2-way non-bucketized table.
func BenchmarkFig9VerticalOnBCHT(b *testing.B) {
	model := arch.SkylakeClusterA()
	for i := 0; i < b.N; i++ {
		var thr [2]float64
		for j, m := range []int{1, 2} {
			r, err := core.Run(core.Params{
				Arch: model, N: 2, M: m, KeyBits: 32, ValBits: 32,
				TableBytes: 1 << 20, LoadFactor: 0.85, HitRate: 0.9,
				Pattern: workload.Uniform, Queries: benchOpts.Queries, Seed: benchOpts.Seed,
				Widths: []int{512}, Approaches: []core.Approach{core.Vertical, core.VerticalHybrid},
			})
			if err != nil {
				b.Fatal(err)
			}
			best, _ := r.Best()
			thr[j] = best.LookupsPerSec
		}
		b.ReportMetric(thr[0]/thr[1], "m1/m2-slowdown")
	}
}

// BenchmarkFig11aMultiGet regenerates Fig. 11a: server-side Get throughput
// gain of the SIMD backends over MemC3 at batch 16.
func BenchmarkFig11aMultiGet(b *testing.B) {
	for _, backend := range experiments.KVSBackends() {
		b.Run(backend, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunKVS(backend, 16, kvsBenchOpts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(16/res.Breakdown.Lookup/1e6, "MGet-lookup-Mkeys/s")
				b.ReportMetric(res.AvgLatency*1e6, "e2e-avg-us")
			}
		})
	}
}

// BenchmarkFig11bPhaseBreakdown regenerates Fig. 11b: the server data
// access phase total for each backend at batch 64.
func BenchmarkFig11bPhaseBreakdown(b *testing.B) {
	for _, backend := range experiments.KVSBackends() {
		b.Run(backend, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunKVS(backend, 64, kvsBenchOpts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Breakdown.Total()*1e6, "data-access-us")
				b.ReportMetric(res.Breakdown.Lookup*1e6, "lookup-us")
			}
		})
	}
}

// BenchmarkFleetStudyPoint regenerates one point of the fleet-scale
// replication study: an 8-server, R=3 fleet under open-loop arrivals,
// quorum writes and fault-driven membership churn (rebalance storms).
func BenchmarkFleetStudyPoint(b *testing.B) {
	opts := experiments.FleetOptions{
		KVSOptions: experiments.KVSOptions{
			Items: 20000, Workers: 4, Clients: 8, Requests: 1200,
			Batches: []int{16}, Seed: 7,
		},
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.FleetStudyPoint(8, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Epochs == 0 {
			b.Fatal("fleet benchmark ran without membership churn")
		}
		b.ReportMetric(res.GoodputKeys/1e6, "goodput-Mkeys/s")
		b.ReportMetric(res.P99Latency*1e6, "p99-us")
	}
}

// BenchmarkParallelFleetScaling runs the same fleet point on the partitioned
// engine at 1, 2, 4 and 8 host workers. sim-Mlookups/s is simulated key
// lookups completed per host-second — the tentpole's sim-speed metric; on a
// multicore host it scales with the worker count (the artifacts stay
// byte-identical, pinned by TestParallelDESBitIdentical), while on a
// single-core host it exposes the window-synchronization overhead.
func BenchmarkParallelFleetScaling(b *testing.B) {
	opts := experiments.FleetOptions{
		KVSOptions: experiments.KVSOptions{
			Items: 20000, Workers: 4, Clients: 8, Requests: 1200,
			Batches: []int{16}, Seed: 7,
		},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("simworkers=%d", workers), func(b *testing.B) {
			o := opts
			o.SimWorkers = workers
			lookups := 0.0
			for i := 0; i < b.N; i++ {
				res, err := experiments.FleetStudyPoint(8, o)
				if err != nil {
					b.Fatal(err)
				}
				if res.Epochs == 0 {
					b.Fatal("fleet benchmark ran without membership churn")
				}
				lookups += float64(res.Requests) * float64(res.BatchSize)
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(lookups/s/1e6, "sim-Mlookups/s")
			}
		})
	}
}

// BenchmarkOverloadStudyPoint regenerates the stressiest cell of the
// metastable-overload study: a 2x-capacity open-loop run with the full
// overload controls on (admission-bounded queues with deadlines, retry
// budgets, hedged reads). The goodput metric guards the graceful-
// degradation claim in the performance trajectory.
func BenchmarkOverloadStudyPoint(b *testing.B) {
	opts := experiments.OverloadOptions{
		KVSOptions: experiments.KVSOptions{
			// Batch 64 keeps the per-message NIC overhead amortized so the
			// servers' worker pools — not their response-send NICs — are the
			// saturated resource the admission queue protects; 32 open-loop
			// client endpoints keep the client-side NICs out of saturation
			// at 2x offered load.
			Items: 20000, Workers: 4, Clients: 32, Requests: 1200,
			Batches: []int{64}, Seed: 7,
		},
		Servers:     4,
		Replication: 2,
		Multipliers: []float64{2},
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.OverloadStudyResult(opts)
		if err != nil {
			b.Fatal(err)
		}
		on2 := res.Points[len(res.Points)-1]
		if on2.Results.ShedQueueFull == 0 {
			b.Fatal("overload benchmark ran without admission sheds")
		}
		b.ReportMetric(on2.Results.GoodputKeys/1e6, "goodput-Mkeys/s")
		b.ReportMetric(on2.Results.P99Latency*1e6, "p99-us")
	}
}

// BenchmarkProfilerOverhead pins the hot-path cost of the cycle-account
// profiler in isolation: the same charged vertical-lookup workload runs on
// a bare engine and on one with a profiler attached (no trace probes — those
// have their own, larger, opt-in cost), and the profiled engine's simulator
// throughput must stay within 10% of the bare engine's. The two sides run
// interleaved, best-of-N per side, so host-clock noise shifts both equally
// instead of skewing the ratio; the first profiled pass also resolves the
// (phase, leaf) handle caches, after which the steady state is
// allocation-free (pinned by TestProfilerSteadyStateAllocFree).
func BenchmarkProfilerOverhead(b *testing.B) {
	model := arch.SkylakeClusterA()
	layout, err := cuckoo.LayoutForBytes(3, 1, 32, 32, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	space := mem.NewAddressSpace()
	table, err := cuckoo.New(space, layout, benchOpts.Seed)
	if err != nil {
		b.Fatal(err)
	}
	stored, _ := table.FillRandom(0.9, newRand(benchOpts.Seed+1))
	gen, err := workload.New(stored, workload.Config{
		Pattern: workload.Uniform, HitRate: 0.9, KeyBits: 32, Seed: benchOpts.Seed + 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.Keys(gen, 4*benchOpts.Queries)
	stream := cuckoo.NewStream(space, queries, 32)
	res := cuckoo.NewResultBuf(space, len(queries), 32)
	cfg := cuckoo.VerticalConfig{Width: 512}

	// newEngine warms a fresh engine like measure() does: caches loaded,
	// one uncharged pass to grow scratch (and, when profiled, a charged
	// pass below resolves the handle caches before the timed reps).
	newEngine := func(p *prof.Profiler) *engine.Engine {
		e := engine.New(model, 1)
		e.SetCharging(false)
		e.Cache.Touch(table.Arena.Base(), table.Arena.Size())
		table.LookupVerticalBatch(e, stream, 0, len(queries), cfg, res, nil)
		e.SetCharging(true)
		e.SetProfiler(p)
		table.LookupVerticalBatch(e, stream, 0, len(queries), cfg, res, nil)
		return e
	}
	pass := func(e *engine.Engine) float64 {
		start := obs.WallNow()
		table.LookupVerticalBatch(e, stream, 0, len(queries), cfg, res, nil)
		secs := obs.WallSince(start).Seconds()
		if secs <= 0 {
			return 0
		}
		return float64(len(queries)) / secs
	}
	for i := 0; i < b.N; i++ {
		bareEng := newEngine(nil)
		profEng := newEngine(prof.NewSet().Profiler("cycles", "bench"))
		var bare, profiled float64
		for rep := 0; rep < 6; rep++ {
			bare = max(bare, pass(bareEng))
			profiled = max(profiled, pass(profEng))
		}
		if bare <= 0 || profiled <= 0 {
			b.Fatal("no throughput measured")
		}
		overhead := 1 - profiled/bare
		b.ReportMetric(overhead*100, "overhead-pct")
		b.ReportMetric(profiled/1e6, "sim-Mlookups/s")
		if overhead > 0.10 {
			b.Fatalf("profiler overhead %.1f%% exceeds the 10%% budget", overhead*100)
		}
	}
}

// newRand is a tiny helper for deterministic benchmark inputs.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
