// Command obsdiff compares two run manifests (run.json files written by
// simdhtbench/kvsbench -manifest) and reports every difference: config and
// arch drift, artifact digest changes, per-metric deltas and per-node
// cycle-account deltas. Wall-derived fields (wall_seconds, sim-speed
// metrics) are always ignored.
//
// Usage:
//
//	obsdiff [-rel f] [-abs f] old.json new.json
//
// Exit status: 0 when the manifests match within tolerance, 1 when any
// delta or one-sided key remains, 2 on usage or I/O errors. The zero
// default tolerances demand exact equality — the right setting for
// same-config regression checks, since this simulator is deterministic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"simdhtbench/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rel := fs.Float64("rel", 0, "relative tolerance for numeric values (0 = exact)")
	abs := fs.Float64("abs", 0, "absolute tolerance for numeric values (0 = exact)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: obsdiff [-rel f] [-abs f] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	old, err := obs.ReadManifest(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 2
	}
	new, err := obs.ReadManifest(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 2
	}
	report := obs.DiffManifests(old, new, obs.DiffOptions{RelTol: *rel, AbsTol: *abs})
	if err := report.Write(stdout); err != nil {
		fmt.Fprintln(stderr, "obsdiff:", err)
		return 2
	}
	if report.Clean() {
		return 0
	}
	return 1
}
