package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simdhtbench/internal/obs"
)

// testManifest is a small but fully-populated manifest: config, artifacts,
// metrics and a two-node cycle account.
func testManifest() *obs.Manifest {
	return &obs.Manifest{
		Tool:   "simdhtbench",
		GitRev: "deadbeef",
		Arch:   "Intel Skylake (Cluster A, 40 cores)",
		Args:   []string{"fig7a"},
		Config: map[string]string{"queries": "400", "seed": "1"},
		Seeds:  map[string]string{"seed": "1"},
		Artifacts: map[string]string{
			"metrics": "sha256:aa", "trace": "sha256:bb",
		},
		Metrics: []obs.MetricPoint{
			{Kind: "counter", Name: "engine_cycles_total", Labels: "{config=a}", Value: "123.5"},
			{Kind: "gauge", Name: "sim_speed_mlookups_per_s", Labels: "{config=a}", Value: "99"},
		},
		Account: []string{
			"a;hash 100",
			"a;probe;mem:L1D 250.5",
		},
		AccountDigest: "sha256:cc",
		WallSeconds:   1.25,
	}
}

func writeManifest(t *testing.T, m *obs.Manifest, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelfDiffIsEmpty(t *testing.T) {
	path := writeManifest(t, testManifest(), "run.json")
	var out, errOut strings.Builder
	if code := run([]string{path, path}, &out, &errOut); code != 0 {
		t.Fatalf("self-diff exit = %d, stderr: %s", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("self-diff produced output:\n%s", out.String())
	}
}

func TestWallClockFieldsIgnored(t *testing.T) {
	old := writeManifest(t, testManifest(), "old.json")
	m := testManifest()
	m.WallSeconds = 99.9
	m.Metrics[1].Value = "12345" // sim_speed_mlookups_per_s: wall-derived
	new := writeManifest(t, m, "new.json")
	var out, errOut strings.Builder
	if code := run([]string{old, new}, &out, &errOut); code != 0 {
		t.Fatalf("wall-clock-only diff exit = %d, output:\n%s%s", code, out.String(), errOut.String())
	}
}

func TestPlantedAccountRegressionExitsNonzero(t *testing.T) {
	old := writeManifest(t, testManifest(), "old.json")
	m := testManifest()
	m.Account[1] = "a;probe;mem:L1D 313.125" // +25% on one phase node
	new := writeManifest(t, m, "new.json")
	var out, errOut strings.Builder
	code := run([]string{old, new}, &out, &errOut)
	if code != 1 {
		t.Fatalf("planted regression exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "account a;probe;mem:L1D") ||
		!strings.Contains(out.String(), "+25.00%") {
		t.Fatalf("regression not reported as account delta:\n%s", out.String())
	}
}

func TestRegressionWithinToleranceAccepted(t *testing.T) {
	old := writeManifest(t, testManifest(), "old.json")
	m := testManifest()
	m.Account[1] = "a;probe;mem:L1D 313.125"
	new := writeManifest(t, m, "new.json")
	var out, errOut strings.Builder
	if code := run([]string{"-rel", "0.30", old, new}, &out, &errOut); code != 0 {
		t.Fatalf("within-tolerance diff exit = %d, output:\n%s", code, out.String())
	}
}

func TestMetricDeltaReported(t *testing.T) {
	old := writeManifest(t, testManifest(), "old.json")
	m := testManifest()
	m.Metrics[0].Value = "200"
	new := writeManifest(t, m, "new.json")
	var out, errOut strings.Builder
	if code := run([]string{old, new}, &out, &errOut); code != 1 {
		t.Fatalf("metric delta exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "engine_cycles_total") {
		t.Fatalf("metric delta not reported:\n%s", out.String())
	}
}

func TestUsageAndIOErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	missing := filepath.Join(t.TempDir(), "missing.json")
	if code := run([]string{missing, missing}, &out, &errOut); code != 2 {
		t.Fatalf("missing-file exit = %d, want 2", code)
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{garbage, garbage}, &out, &errOut); code != 2 {
		t.Fatalf("garbage-file exit = %d, want 2", code)
	}
}
