// Command simdhtlint runs the project's static-analysis suite (alloclint,
// chargelint, determlint, parlint, problint, veclint, plus the built-in
// suppression-hygiene check — see internal/lint) over the module and exits
// non-zero if any diagnostic survives //lint:ignore suppression.
//
// Usage:
//
//	simdhtlint [-C dir] [-json] [-baseline file]
//
// -C names any directory inside the module; the module root is located by
// walking up to go.mod.
//
// -json replaces the human rendering with a machine-readable report on
// stdout: the findings (root-relative file, line, column, analyzer,
// message, in deterministic order) plus per-analyzer counts and the total.
// The report is its own baseline format: a clean run's output can be
// checked in and fed back via -baseline.
//
// -baseline reads a previous -json report and turns the exit status into a
// count-regression gate: the run fails only if some analyzer produces more
// findings than the baseline records (analyzers absent from the baseline
// count as zero). Without -baseline any finding is fatal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"simdhtbench/internal/lint"
)

// report is the -json output and the -baseline input.
type report struct {
	Format   string         `json:"format"`
	Findings []finding      `json:"findings"`
	Counts   map[string]int `json:"counts"`
	Total    int            `json:"total"`
}

type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	dir := flag.String("C", ".", "directory inside the module to lint")
	jsonOut := flag.Bool("json", false, "emit a machine-readable report on stdout instead of the human rendering")
	baseline := flag.String("baseline", "", "per-analyzer count baseline (a previous -json report); fail only on count regressions")
	flag.Parse()

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	mod, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}

	analyzers := lint.All()
	diags := lint.Run(mod, analyzers)

	counts := make(map[string]int, len(analyzers)+1)
	for _, a := range analyzers {
		counts[a.Name] = 0
	}
	counts["lint"] = 0 // the built-in suppression-hygiene check
	for _, d := range diags {
		counts[d.Analyzer]++
	}

	if *jsonOut {
		rep := report{Format: "simdhtlint-v1", Findings: make([]finding, 0, len(diags)), Counts: counts, Total: len(diags)}
		for _, d := range diags {
			rep.Findings = append(rep.Findings, finding{
				File:     relTo(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.Render(root))
		}
	}

	if *baseline != "" {
		regressions, err := regressionsAgainst(*baseline, counts)
		if err != nil {
			fatal(err)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "simdhtlint: count regression vs %s: %s\n", *baseline, strings.Join(regressions, ", "))
			os.Exit(1)
		}
		return
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simdhtlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// regressionsAgainst compares the run's per-analyzer counts to the baseline
// report, returning a description per analyzer that got worse.
func regressionsAgainst(path string, counts map[string]int) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	names := make([]string, 0, len(counts))
	//lint:ignore determlint iteration only collects the keys; the slice is sorted below before any output
	for name := range counts {
		names = append(names, name)
	}
	// Insertion sort: deterministic regression order without importing sort.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var regressions []string
	for _, name := range names {
		if got, want := counts[name], base.Counts[name]; got > want {
			regressions = append(regressions, fmt.Sprintf("%s %d > %d", name, got, want))
		}
	}
	return regressions, nil
}

func relTo(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "simdhtlint: %v\n", err)
	os.Exit(2)
}
