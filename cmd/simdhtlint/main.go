// Command simdhtlint runs the project's static-analysis suite (chargelint,
// determlint, veclint — see internal/lint) over the module and exits
// non-zero if any diagnostic survives //lint:ignore suppression.
//
// Usage:
//
//	simdhtlint [-C dir]
//
// -C names any directory inside the module; the module root is located by
// walking up to go.mod.
package main

import (
	"flag"
	"fmt"
	"os"

	"simdhtbench/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to lint")
	flag.Parse()

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simdhtlint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simdhtlint: %v\n", err)
		os.Exit(2)
	}
	mod, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simdhtlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(mod, lint.All())
	for _, d := range diags {
		fmt.Println(d.Render(root))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simdhtlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
