// Command simdhtbench is the SimdHT-Bench harness: it reproduces every
// micro-benchmark table and figure of the paper's evaluation (Section V)
// and exposes the validation engine for arbitrary configurations.
//
// Usage:
//
//	simdhtbench [flags] <experiment>...
//
// Experiments: table1, fig2, listing1, fig5 (cs1a), fig6 (cs1b),
// fig7a (cs2), fig7b (cs3), fig8 (cs4), fig9 (cs5), validate, run, all.
// Extensions beyond the paper: split (bucket-arrangement ablation), mixed
// (read/update study, the paper's stated future work), and amac (group-
// prefetching scalar baseline).
//
// `validate` prints the viable SIMD design choices for the layout given by
// -n/-m/-keybits/-valbits/-size on the chosen -cpu. `run` additionally
// measures them with the performance engine.
//
// Observability: -trace out.json writes a Chrome trace_event file (virtual
// time: engine cycles) and -metrics out.csv writes the metrics registry;
// both are byte-identical across runs at any -parallel setting. -profile
// cycles emits the deterministic cycle account — folded flamegraph stacks
// on stdout, breakdown and report tables on stderr. -manifest run.json
// writes a run manifest (config, seeds, artifact digests, metrics, account)
// for cmd/obsdiff to compare. -heartbeat N prints stderr liveness every N
// measured variants. -keytrace records/replays key traces (the flag was
// previously named -trace).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"simdhtbench/internal/arch"
	"simdhtbench/internal/core"
	"simdhtbench/internal/experiments"
	"simdhtbench/internal/fault"
	"simdhtbench/internal/obs"
	"simdhtbench/internal/obs/prof"
	"simdhtbench/internal/report"
	"simdhtbench/internal/sweep"
	"simdhtbench/internal/workload"
)

func main() {
	var (
		cpu      = flag.String("cpu", "skylake-a", "CPU model: skylake-a, skylake-b, cascadelake, icelake, zen2")
		queries  = flag.Int("queries", 6000, "measured queries per configuration")
		seed     = flag.Int64("seed", 1, "base random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Int("parallel", 0, "sweep workers fanning configurations out (0 = all cores, 1 = sequential); output is identical at every setting")
		sstats   = flag.Bool("sweepstats", false, "print per-job sweep timing to stderr after each experiment")

		n        = flag.Int("n", 2, "validate/run: number of hash functions (N)")
		m        = flag.Int("m", 4, "validate/run: slots per bucket (m; 1 = non-bucketized)")
		keyBits  = flag.Int("keybits", 32, "validate/run: key width in bits (16/32/64)")
		valBits  = flag.Int("valbits", 32, "validate/run: payload width in bits (16/32/64)")
		size     = flag.Int("size", 1<<20, "validate/run: hash table size in bytes")
		pattern  = flag.String("pattern", "uniform", "run: access pattern (uniform|skewed)")
		hitRate  = flag.Float64("hitrate", 0.9, "run: query hit rate")
		lf       = flag.Float64("lf", 0.9, "run: target load factor")
		cores    = flag.Int("cores", 0, "run: concurrent cores (0 = all)")
		keytrace = flag.String("keytrace", "", "run: replay a recorded key trace file instead of a generated pattern; record: output path")
		brk      = flag.Bool("breakdown", false, "run: also print the per-op cycle breakdown of each variant")

		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON file (virtual time = engine cycles)")
		metricsOut = flag.String("metrics", "", "write the metrics registry as CSV")
		profile    = flag.String("profile", "", "emit the deterministic cycle account: 'cycles' writes folded flamegraph stacks to stdout (pipe into flamegraph.pl) and the breakdown table to stderr; experiment tables move to stderr")
		manifestP  = flag.String("manifest", "", "write a structured run manifest (JSON: config, seeds, artifact digests, metric snapshot, cycle account) to this file")
		heartbeat  = flag.Int("heartbeat", 0, "print a stderr progress line every N measured variants (0 = off; wall-derived, never in deterministic output)")

		faults    = flag.String("faults", "", "run: fault-injection spec; 'pressure=<items>@<period>' injects charged insert-pressure bursts into the measured window")
		faultSeed = flag.Int64("fault-seed", 0, "fault plan RNG seed (0 = -seed)")

		simspeed   = flag.Bool("simspeed", false, "run: print each variant's simulator throughput (simulated Mlookups per host second) to stderr and publish it as an obs gauge; wall-clock-derived, never part of deterministic output")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	wallStart := obs.WallNow()
	if *profile != "" && *profile != "cycles" {
		fatal(fmt.Errorf("unknown -profile kind %q (want cycles)", *profile))
	}
	if *profile != "" {
		// The folded cycle-account stacks own stdout in profile mode, so the
		// experiment tables (and other report prints) move to stderr.
		tablesTo = os.Stderr
	}

	// pprof output is wall-clock-shaped by nature and goes to its own
	// files, never into tables, -trace or -metrics, so the deterministic
	// artifacts stay byte-identical whether or not profiling is enabled.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	model, err := arch.ByName(*cpu)
	if err != nil {
		fatal(err)
	}
	opts := experiments.Options{Queries: *queries, Seed: *seed, Parallel: *parallel}
	if *sstats {
		opts.OnSweep = printSweepStats
	}
	hb := obs.NewHeartbeat(*heartbeat, os.Stderr)
	opts.Heartbeat = hb
	var col *obs.Collector
	if *traceOut != "" || *metricsOut != "" || *profile != "" || *manifestP != "" {
		col = obs.NewCollector()
		opts.Obs = col
	}
	if *profile != "" || *manifestP != "" {
		col.EnableProfiling(prof.NewSet())
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, cmd := range args {
		switch cmd {
		case "all":
			runAll(opts, *csv)
		case "table1":
			emit(experiments.Table1(), *csv)
		case "fig2":
			t, err := experiments.Fig2(opts)
			check(err)
			emit(t, *csv)
		case "listing1":
			s, err := experiments.Listing1()
			check(err)
			fmt.Fprintln(tablesTo, s)
		case "fig5", "cs1a":
			t, err := experiments.Fig5(opts)
			check(err)
			emit(t, *csv)
			if !*csv {
				for _, p := range []workload.Pattern{workload.Uniform, workload.Skewed} {
					g, err := experiments.Fig5Grid(p, opts)
					check(err)
					g.Fprint(tablesTo)
					fmt.Fprintln(tablesTo)
				}
			}
		case "fig6", "cs1b":
			t, err := experiments.Fig6(opts)
			check(err)
			emit(t, *csv)
		case "fig7a", "cs2":
			t, err := experiments.Fig7a(opts)
			check(err)
			emit(t, *csv)
		case "fig7b", "cs3":
			t, err := experiments.Fig7b(opts)
			check(err)
			emit(t, *csv)
		case "fig8", "cs4":
			t, err := experiments.Fig8(opts)
			check(err)
			emit(t, *csv)
		case "fig9", "cs5":
			t, err := experiments.Fig9(opts)
			check(err)
			emit(t, *csv)
		case "split":
			t, err := experiments.SplitBucket(opts)
			check(err)
			emit(t, *csv)
		case "mixed":
			t, err := experiments.MixedWorkload(opts)
			check(err)
			emit(t, *csv)
		case "amac":
			t, err := experiments.AMACStudy(opts)
			check(err)
			emit(t, *csv)
		case "arches":
			t, err := experiments.EmergingArchitectures(opts)
			check(err)
			emit(t, *csv)
		case "validate":
			rows, err := core.ValidateGrid(model, [][2]int{{*n, *m}}, *keyBits, *valBits, *size, model.Widths)
			check(err)
			fmt.Fprint(tablesTo, core.FormatListing(model, *keyBits, *valBits, model.Widths, rows))
		case "run":
			pat := workload.Uniform
			if *pattern == "skewed" {
				pat = workload.Skewed
			}
			spec, err := fault.ParseSpec(*faults)
			check(err)
			params := core.Params{
				Arch: model, N: *n, M: *m, KeyBits: *keyBits, ValBits: *valBits,
				TableBytes: *size, LoadFactor: *lf, HitRate: *hitRate,
				Pattern: pat, Queries: *queries, Cores: *cores, Seed: *seed,
				Obs:    col.Scope("config", "run"),
				Faults: spec, FaultSeed: *faultSeed,
				RecordSimSpeed: *simspeed,
				Heartbeat:      hb,
			}
			if *keytrace != "" {
				f, err := os.Open(*keytrace)
				check(err)
				keys, err := workload.ReadTrace(f)
				f.Close()
				check(err)
				params.Trace = keys
			}
			r, err := core.Run(params)
			check(err)
			emit(resultTable(r), *csv)
			if *brk {
				emit(breakdownTable(r), *csv)
			}
			if *simspeed {
				// Stderr only: stdout carries the deterministic tables.
				simSpeedTable(r).Fprint(os.Stderr)
				fmt.Fprintln(os.Stderr)
			}
		case "advise":
			pat := workload.Uniform
			if *pattern == "skewed" {
				pat = workload.Skewed
			}
			recs, err := core.Advise(core.AdviseRequest{
				Params: core.Params{
					Arch: model, KeyBits: *keyBits, ValBits: *valBits,
					TableBytes: *size, HitRate: *hitRate, Pattern: pat,
					Queries: *queries, Seed: *seed,
				},
				MinLoadFactor: *lf,
			})
			check(err)
			t := report.NewTable(
				fmt.Sprintf("Design guidance: (K,V)=(%d,%d)b, %s HT, %s pattern, LF >= %.2f on %s",
					*keyBits, *valBits, sizeArg(*size), *pattern, *lf, model.Name),
				"#", "Layout", "Best design", "M lookups/s/core", "Speedup", "Max LF")
			for i, r := range recs {
				design := r.Best.Choice.String()
				if r.BestIsScalar {
					design = "scalar"
				}
				t.AddRow(i+1, r.Layout.String(), design,
					fmt.Sprintf("%.1f", r.Best.LookupsPerSec/1e6),
					fmt.Sprintf("%.2fx", r.Speedup),
					fmt.Sprintf("%.2f", r.MaxLF))
			}
			emit(t, *csv)
		case "selftest":
			checked, err := core.SelfTest(50, *seed)
			check(err)
			fmt.Fprintf(tablesTo, "selftest: %d (configuration, variant) combinations agree with the native reference\n", checked)
		case "record":
			// Record the configured pattern's query stream to -keytrace for
			// later replay (a seed-stable capture of the workload).
			if *keytrace == "" {
				fatal(fmt.Errorf("record requires -keytrace <output path>"))
			}
			pat := workload.Uniform
			if *pattern == "skewed" {
				pat = workload.Skewed
			}
			stored := make([]uint64, 0, 1<<16)
			for i := uint64(2); len(stored) < 1<<16; i += 2 {
				stored = append(stored, i)
			}
			gen, err := workload.New(stored, workload.Config{
				Pattern: pat, HitRate: *hitRate, KeyBits: *keyBits, Seed: *seed,
			})
			check(err)
			f, err := os.Create(*keytrace)
			check(err)
			err = workload.WriteTrace(f, workload.Keys(gen, *queries))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			check(err)
			fmt.Fprintf(tablesTo, "recorded %d %s queries to %s\n", *queries, pat, *keytrace)
		default:
			fatal(fmt.Errorf("unknown experiment %q (want table1, fig2, listing1, fig5..fig9, split, mixed, amac, arches, validate, run, record, advise, selftest, all)", cmd))
		}
	}
	digests, err := obs.WriteArtifacts(col, *traceOut, *metricsOut)
	check(err)
	if *profile != "" {
		set := col.ProfilerSet()
		check(set.WriteTable(os.Stderr))
		check(set.WriteFolded(os.Stdout))
	}
	if *manifestP != "" {
		seeds := map[string]string{"seed": fmt.Sprint(*seed)}
		if *faultSeed != 0 {
			seeds["fault-seed"] = fmt.Sprint(*faultSeed)
		}
		m, err := obs.BuildManifest("simdhtbench", model.Name, flag.CommandLine,
			seeds, digests, col, obs.WallSince(wallStart).Seconds())
		check(err)
		check(m.WriteFile(*manifestP))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		check(err)
		runtime.GC()
		check(pprof.WriteHeapProfile(f))
		check(f.Close())
	}
}

// simSpeedTable renders the per-variant simulator throughput of a run. The
// values derive from obs.WallNow and vary run to run, so the table goes to
// stderr and never into golden-checked output.
func simSpeedTable(r *core.Result) *report.Table {
	t := report.NewTable("Simulator throughput (wall-clock; profiling only)",
		"Variant", "Host ms", "Sim Mlookups/s")
	row := func(name string, m core.Measurement) {
		t.AddRow(name,
			fmt.Sprintf("%.1f", m.HostSeconds*1e3),
			fmt.Sprintf("%.2f", m.SimSpeed))
	}
	row("Scalar", r.Scalar)
	if r.AMAC != nil {
		row("AMAC", *r.AMAC)
	}
	for _, v := range r.Vector {
		row(v.Choice.String(), v)
	}
	return t
}

// printSweepStats renders sweep wall-clock profiling to stderr through a
// throwaway registry — profiling output never mixes into -metrics, which
// must stay deterministic.
func printSweepStats(s *sweep.Stats) {
	reg := obs.NewRegistry()
	s.Record(reg)
	if err := reg.WriteText(os.Stderr); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr)
}

func runAll(opts experiments.Options, csv bool) {
	emit(experiments.Table1(), csv)
	for _, f := range []func(experiments.Options) (*report.Table, error){
		experiments.Fig2, experiments.Fig5, experiments.Fig6,
		experiments.Fig7a, experiments.Fig7b, experiments.Fig8, experiments.Fig9,
	} {
		t, err := f(opts)
		check(err)
		emit(t, csv)
	}
	s, err := experiments.Listing1()
	check(err)
	fmt.Fprintln(tablesTo, "Listing 1: SIMD-aware design choices")
	fmt.Fprintln(tablesTo, s)
}

func resultTable(r *core.Result) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("%s | LF=%.2f (%d items)", r.Layout, r.AchievedLF, r.Inserted),
		"Variant", "M lookups/s/core", "Cycles/lookup", "Speedup", "L1 hit", "DRAM/lookup")
	t.AddRow("Scalar",
		fmt.Sprintf("%.1f", r.Scalar.LookupsPerSec/1e6),
		fmt.Sprintf("%.1f", r.Scalar.CyclesPerLookup),
		"1.00x",
		fmt.Sprintf("%.2f", r.Scalar.L1HitRate),
		fmt.Sprintf("%.2f", r.Scalar.DRAMPerLookup))
	for _, v := range r.Vector {
		t.AddRow(v.Choice.String(),
			fmt.Sprintf("%.1f", v.LookupsPerSec/1e6),
			fmt.Sprintf("%.1f", v.CyclesPerLookup),
			fmt.Sprintf("%.2fx", r.Speedup(v)),
			fmt.Sprintf("%.2f", v.L1HitRate),
			fmt.Sprintf("%.2f", v.DRAMPerLookup))
	}
	return t
}

// breakdownTable decomposes each variant's cycles/lookup into the memory
// share and the top instruction classes.
func breakdownTable(r *core.Result) *report.Table {
	t := report.NewTable("Cycle breakdown per lookup (memory vs instruction classes, cache hits/misses)",
		"Variant", "Total", "Memory", "Top instruction classes", "Cache hits/misses")
	row := func(name string, m core.Measurement) {
		type kv struct {
			op arch.OpClass
			cy float64
		}
		var ops []kv
		//lint:ignore determlint order is canonicalized by the total sort below before anything is rendered
		for op, cy := range m.OpCycles {
			ops = append(ops, kv{op, cy})
		}
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].cy != ops[j].cy {
				return ops[i].cy > ops[j].cy
			}
			return ops[i].op < ops[j].op
		})
		var parts []string
		for i, o := range ops {
			if i >= 4 || o.cy < 0.05 {
				break
			}
			parts = append(parts, fmt.Sprintf("%v=%.1f", o.op, o.cy))
		}
		var levels []string
		for _, l := range m.CacheLevels {
			if l.Name == "DRAM" {
				levels = append(levels, fmt.Sprintf("DRAM %d", l.Hits))
				continue
			}
			levels = append(levels, fmt.Sprintf("%s %d/%d", l.Name, l.Hits, l.Misses))
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", m.CyclesPerLookup),
			fmt.Sprintf("%.1f", m.MemCyclesPerLookup),
			strings.Join(parts, " "),
			strings.Join(levels, " "))
	}
	row("Scalar", r.Scalar)
	for _, v := range r.Vector {
		row(v.Choice.String(), v)
	}
	return t
}

func sizeArg(sz int) string {
	if sz >= 1<<20 && sz%(1<<20) == 0 {
		return fmt.Sprintf("%dMB", sz>>20)
	}
	return fmt.Sprintf("%dKB", sz>>10)
}

// tablesTo is where experiment reports go: stdout normally, stderr in
// -profile mode (the folded cycle-account stacks own stdout there).
var tablesTo io.Writer = os.Stdout

func emit(t *report.Table, csv bool) {
	if csv {
		t.CSV(tablesTo)
	} else {
		t.Fprint(tablesTo)
	}
	fmt.Fprintln(tablesTo)
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simdhtbench:", err)
	os.Exit(1)
}
