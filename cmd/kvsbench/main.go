// Command kvsbench reproduces the key-value-store validation of Section VI
// (Fig. 11): a memslap-style Multi-Get workload against an RDMA-Memcached-
// style server running the MemC3 baseline or one of the two SIMD-aware
// index backends, over a simulated InfiniBand EDR fabric.
//
// Usage:
//
//	kvsbench [flags] [fig11a|fig11b|etc|cluster|single|all]
//
// `single` runs one backend/batch combination (see -backend / -batch) and
// prints the full result line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"simdhtbench/internal/experiments"
	"simdhtbench/internal/report"
	"simdhtbench/internal/sweep"
)

func main() {
	var (
		items    = flag.Int("items", 200000, "stored key-value items (paper: 2M)")
		workers  = flag.Int("workers", 26, "server worker threads")
		clients  = flag.Int("clients", 26, "memslap client threads")
		requests = flag.Int("requests", 3000, "measured Multi-Gets per configuration")
		batches  = flag.String("batches", "16,64", "comma-separated Multi-Get sizes")
		backend  = flag.String("backend", "vertical", "single: memc3|horizontal|vertical")
		batch    = flag.Int("batch", 16, "single: Multi-Get size")
		seed     = flag.Int64("seed", 7, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Int("parallel", 0, "sweep workers fanning configurations out (0 = all cores, 1 = sequential); output is identical at every setting")
		sstats   = flag.Bool("sweepstats", false, "print per-job sweep timing to stderr after each experiment")
	)
	flag.Parse()

	opts := experiments.KVSOptions{
		Items:    *items,
		Workers:  *workers,
		Clients:  *clients,
		Requests: *requests,
		Batches:  parseBatches(*batches),
		Seed:     *seed,
		Parallel: *parallel,
	}
	if *sstats {
		opts.OnSweep = func(s *sweep.Stats) {
			s.Table().Fprint(os.Stderr)
			fmt.Fprintln(os.Stderr)
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, cmd := range args {
		switch cmd {
		case "all":
			t, err := experiments.Fig11a(opts)
			check(err)
			emit(t, *csv)
			t, err = experiments.Fig11b(opts)
			check(err)
			emit(t, *csv)
		case "fig11a":
			t, err := experiments.Fig11a(opts)
			check(err)
			emit(t, *csv)
		case "fig11b":
			t, err := experiments.Fig11b(opts)
			check(err)
			emit(t, *csv)
		case "etc":
			t, err := experiments.ETCStudy(opts)
			check(err)
			emit(t, *csv)
		case "cluster":
			t, err := experiments.ClusterStudy(opts)
			check(err)
			emit(t, *csv)
		case "single":
			res, err := experiments.RunKVS(*backend, *batch, opts)
			check(err)
			fmt.Println(res)
			fmt.Printf("  phases per batch: pre=%.2fus lookup=%.2fus post=%.2fus (util %.2f)\n",
				res.Breakdown.Pre*1e6, res.Breakdown.Lookup*1e6, res.Breakdown.Post*1e6, res.WorkerUtil)
		default:
			fatal(fmt.Errorf("unknown command %q (want fig11a, fig11b, etc, cluster, single, all)", cmd))
		}
	}
}

func parseBatches(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("invalid batch size %q", part))
		}
		out = append(out, v)
	}
	return out
}

func emit(t *report.Table, csv bool) {
	if csv {
		t.CSV(os.Stdout)
	} else {
		t.Fprint(os.Stdout)
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvsbench:", err)
	os.Exit(1)
}
