// Command kvsbench reproduces the key-value-store validation of Section VI
// (Fig. 11): a memslap-style Multi-Get workload against an RDMA-Memcached-
// style server running the MemC3 baseline or one of the two SIMD-aware
// index backends, over a simulated InfiniBand EDR fabric.
//
// Usage:
//
//	kvsbench [flags] [fig11a|fig11b|etc|cluster|fleet|overload|fault-sweep|single|all]
//
// `single` runs one backend/batch combination (see -backend / -batch) and
// prints the full result line.
//
// `fleet` (also reachable as `kvsbench -fleet`) runs the fleet-scale
// replication study: R-way replicated Multi-Gets with open-loop arrivals,
// quorum writes, replica failover, read-repair and fault-driven membership
// churn (rebalance storms), swept over -fleet-sizes. Without -faults it uses
// a built-in rolling-failure plan.
//
// `overload` (also reachable as `kvsbench -overload`) runs the metastable-
// overload study: it measures the fleet's closed-loop capacity, then sweeps
// open-loop offered load across -overload-mults multiples of it twice —
// with the overload controls off (timeout/retry only, the configuration
// that collapses) and on (admission-bounded queues with queue deadlines,
// retry budgets and hedged reads, derived from the measured capacity).
//
// Fault injection: -faults arms a deterministic fault plan (message
// drop/dup/delay on the fabric, crash/slowdown windows and insert pressure
// on the server, timeout/retry/degradation on the client) and `fault-sweep`
// measures goodput against injected loss rates. All fault timing is
// virtual, so faulty runs stay byte-identical across runs and -parallel
// settings.
//
// Observability: -trace out.json writes a Chrome trace_event file (virtual
// time: the discrete-event simulation clock, in microseconds) and -metrics
// out.csv writes the metrics registry; both are byte-identical across runs
// at any -parallel setting. -profile cycles emits the deterministic time
// account (unit: virtual µs, including net hops and server queueing) —
// folded flamegraph stacks on stdout, breakdown and report tables on
// stderr. -manifest run.json writes a run manifest for cmd/obsdiff to
// compare. -heartbeat N prints stderr liveness every N simulation events.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"simdhtbench/internal/experiments"
	"simdhtbench/internal/fault"
	"simdhtbench/internal/obs"
	"simdhtbench/internal/obs/prof"
	"simdhtbench/internal/report"
	"simdhtbench/internal/sweep"
)

func main() {
	var (
		items      = flag.Int("items", 200000, "stored key-value items (paper: 2M)")
		workers    = flag.Int("workers", 26, "server worker threads")
		clients    = flag.Int("clients", 26, "memslap client threads")
		requests   = flag.Int("requests", 3000, "measured Multi-Gets per configuration")
		batches    = flag.String("batches", "16,64", "comma-separated Multi-Get sizes")
		backend    = flag.String("backend", "vertical", "single: memc3|horizontal|vertical")
		batch      = flag.Int("batch", 16, "single: Multi-Get size")
		seed       = flag.Int64("seed", 7, "random seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel   = flag.Int("parallel", 0, "sweep workers fanning configurations out (0 = all cores, 1 = sequential); output is identical at every setting")
		simWorkers = flag.Int("simworkers", 0, "fleet/overload: host workers advancing one simulation's server partitions in parallel (0 = serial engine); output is identical at every setting >= 1")
		sstats     = flag.Bool("sweepstats", false, "print per-job sweep timing to stderr after each experiment")

		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON file (virtual time = DES clock)")
		metricsOut = flag.String("metrics", "", "write the metrics registry as CSV")
		profile    = flag.String("profile", "", "emit the deterministic time account: 'cycles' writes folded flamegraph stacks (unit: virtual microseconds) to stdout and the breakdown table to stderr; report tables move to stderr")
		manifestP  = flag.String("manifest", "", "write a structured run manifest (JSON: config, seeds, artifact digests, metric snapshot, time account) to this file")
		heartbeat  = flag.Int("heartbeat", 0, "print a stderr progress line every N dispatched simulation events (0 = off; wall-derived, never in deterministic output)")

		faults    = flag.String("faults", "", "fault-injection spec, e.g. 'drop=0.1,crash=20us:10us,timeout=10us,retries=3,backoff=5us' (empty = no faults)")
		faultSeed = flag.Int64("fault-seed", 0, "fault plan RNG seed (0 = -seed); all fault timing is virtual, so output stays deterministic")

		fleetCmd    = flag.Bool("fleet", false, "run the fleet-scale replication study (same as the `fleet` command)")
		fleetSizes  = flag.String("fleet-sizes", "3,8,16,32,64", "fleet: comma-separated server counts")
		replication = flag.Int("replication", 3, "fleet: replica-set width R (clamped to each fleet size); overload: replica width (default 2 there)")
		arrivalRate = flag.Float64("arrival-rate", 2e5, "fleet: aggregate open-loop Multi-Get arrival rate (requests/s of virtual time)")
		writeFrac   = flag.Float64("write-frac", 0.05, "fleet: fraction of requests issued as quorum writes")

		overloadCmd     = flag.Bool("overload", false, "run the metastable-overload study (same as the `overload` command)")
		overloadServers = flag.Int("overload-servers", 4, "overload: fleet width")
		overloadMults   = flag.String("overload-mults", "0.5,0.75,1,1.5,2", "overload: comma-separated offered-load multipliers of measured capacity")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	wallStart := obs.WallNow()
	if *profile != "" && *profile != "cycles" {
		fatal(fmt.Errorf("unknown -profile kind %q (want cycles)", *profile))
	}
	if *profile != "" {
		// The folded account stacks own stdout in profile mode, so the
		// report tables move to stderr.
		tablesTo = os.Stderr
	}

	// pprof output is wall-clock-shaped by nature and goes to its own
	// files, never into tables, -trace or -metrics, so the deterministic
	// artifacts stay byte-identical whether or not profiling is enabled.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	spec, err := fault.ParseSpec(*faults)
	check(err)
	opts := experiments.KVSOptions{
		Items:      *items,
		Workers:    *workers,
		Clients:    *clients,
		Requests:   *requests,
		Batches:    parseBatches(*batches),
		Seed:       *seed,
		Parallel:   *parallel,
		SimWorkers: *simWorkers,
		Faults:     spec,
		FaultSeed:  *faultSeed,
	}
	if *sstats {
		opts.OnSweep = printSweepStats
	}
	opts.Heartbeat = obs.NewHeartbeat(*heartbeat, os.Stderr)
	var col *obs.Collector
	if *traceOut != "" || *metricsOut != "" || *profile != "" || *manifestP != "" {
		col = obs.NewCollector()
		opts.Obs = col
	}
	if *profile != "" || *manifestP != "" {
		col.EnableProfiling(prof.NewSet())
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	if *fleetCmd {
		args = append([]string{"fleet"}, args...)
		if len(args) == 2 && args[1] == "all" && flag.NArg() == 0 {
			args = args[:1] // bare `kvsbench -fleet` runs only the fleet study
		}
	}
	if *overloadCmd {
		args = append([]string{"overload"}, args...)
		if len(args) == 2 && args[1] == "all" && flag.NArg() == 0 {
			args = args[:1] // bare `kvsbench -overload` runs only the overload study
		}
	}
	fleetOpts := experiments.FleetOptions{
		KVSOptions:    opts,
		FleetSizes:    parseBatches(*fleetSizes),
		Replication:   *replication,
		ArrivalRate:   *arrivalRate,
		WriteFraction: *writeFrac,
	}
	overloadRepl := *replication
	if overloadRepl > 2 && !isFlagSet("replication") {
		overloadRepl = 0 // overload default R=2 unless -replication given
	}
	overloadOpts := experiments.OverloadOptions{
		KVSOptions:  opts,
		Servers:     *overloadServers,
		Replication: overloadRepl,
		Multipliers: parseMults(*overloadMults),
	}
	for _, cmd := range args {
		switch cmd {
		case "all":
			t, err := experiments.Fig11a(opts)
			check(err)
			emit(t, *csv)
			t, err = experiments.Fig11b(opts)
			check(err)
			emit(t, *csv)
		case "fig11a":
			t, err := experiments.Fig11a(opts)
			check(err)
			emit(t, *csv)
		case "fig11b":
			t, err := experiments.Fig11b(opts)
			check(err)
			emit(t, *csv)
		case "etc":
			t, err := experiments.ETCStudy(opts)
			check(err)
			emit(t, *csv)
		case "cluster":
			t, err := experiments.ClusterStudy(opts)
			check(err)
			emit(t, *csv)
		case "fleet":
			t, err := experiments.FleetStudy(fleetOpts)
			check(err)
			emit(t, *csv)
		case "overload":
			t, err := experiments.OverloadStudy(overloadOpts)
			check(err)
			emit(t, *csv)
		case "fault-sweep":
			t, err := experiments.FaultSweep(opts)
			check(err)
			emit(t, *csv)
		case "single":
			res, err := experiments.RunKVS(*backend, *batch, opts)
			check(err)
			fmt.Fprintln(tablesTo, res)
			fmt.Fprintf(tablesTo, "  phases per batch: pre=%.2fus lookup=%.2fus post=%.2fus (util %.2f)\n",
				res.Breakdown.Pre*1e6, res.Breakdown.Lookup*1e6, res.Breakdown.Post*1e6, res.WorkerUtil)
		default:
			fatal(fmt.Errorf("unknown command %q (want fig11a, fig11b, etc, cluster, fleet, overload, fault-sweep, single, all)", cmd))
		}
	}
	digests, err := obs.WriteArtifacts(col, *traceOut, *metricsOut)
	check(err)
	if *profile != "" {
		set := col.ProfilerSet()
		check(set.WriteTable(os.Stderr))
		check(set.WriteFolded(os.Stdout))
	}
	if *manifestP != "" {
		seeds := map[string]string{"seed": fmt.Sprint(*seed)}
		if *faultSeed != 0 {
			seeds["fault-seed"] = fmt.Sprint(*faultSeed)
		}
		m, err := obs.BuildManifest("kvsbench", "", flag.CommandLine,
			seeds, digests, col, obs.WallSince(wallStart).Seconds())
		check(err)
		check(m.WriteFile(*manifestP))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		check(err)
		runtime.GC()
		check(pprof.WriteHeapProfile(f))
		check(f.Close())
	}
}

// printSweepStats renders sweep wall-clock profiling to stderr through a
// throwaway registry — profiling output never mixes into -metrics, which
// must stay deterministic.
func printSweepStats(s *sweep.Stats) {
	reg := obs.NewRegistry()
	s.Record(reg)
	if err := reg.WriteText(os.Stderr); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr)
}

// isFlagSet reports whether the named flag was given explicitly.
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parseMults(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("invalid load multiplier %q", part))
		}
		out = append(out, v)
	}
	return out
}

func parseBatches(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("invalid batch size %q", part))
		}
		out = append(out, v)
	}
	return out
}

// tablesTo is where report tables go: stdout normally, stderr in -profile
// mode (the folded account stacks own stdout there).
var tablesTo io.Writer = os.Stdout

func emit(t *report.Table, csv bool) {
	if csv {
		t.CSV(tablesTo)
	} else {
		t.Fprint(tablesTo)
	}
	fmt.Fprintln(tablesTo)
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvsbench:", err)
	os.Exit(1)
}
